// Command topogen generates a topology and prints its graph-theoretic
// profile — the abstract side of the deployability tradeoff, on its own
// for quick comparisons.
//
// Usage:
//
//	topogen -topo jellyfish -n 128 -radix 16 -net 8
//	topogen -topo fattree -k 16
//	topogen -topo slimfly -q 13
//	topogen -topo jellyfish -n 128 -radix 16 -net 8 -emit fabric.json
//	topogen -topo-file fabric.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"physdep/internal/cli"
	"physdep/internal/interchange"
	"physdep/internal/trafficsim"
	"physdep/internal/units"
)

func main() {
	var (
		topoName = flag.String("topo", "fattree", strings.Join(cli.Families(), "|"))
		k        = flag.Int("k", 8, "fat-tree K / fatclique Kf / butterfly dims")
		n        = flag.Int("n", 64, "jellyfish N / leaf count / butterfly C / flatrandom N")
		radix    = flag.Int("radix", 16, "switch radix")
		net      = flag.Int("net", 8, "network ports per ToR (flatrandom R)")
		d        = flag.Int("d", 8, "xpander D / fatclique Ks / vl2 DA")
		lift     = flag.Int("lift", 6, "xpander lift / fatclique Kb / vl2 DI")
		q        = flag.Int("q", 5, "slim fly q")
		spines   = flag.Int("spines", 8, "leaf-spine spines")
		rate     = flag.Float64("rate", 100, "line rate Gbps")
		seed     = flag.Uint64("seed", 1, "random seed")
		tput     = flag.Bool("throughput", false, "also compute uniform-traffic throughput (slower)")
		emit     = flag.String("emit", "", "also write the fabric as an interchange document to this path")
		topoFile = flag.String("topo-file", "", "profile an interchange document instead of generating (overrides -topo)")
	)
	flag.Parse()
	params := cli.TopoParams{
		Name: *topoName, K: *k, N: *n, Radix: *radix, Net: *net, D: *d,
		Lift: *lift, Q: *q, Spines: *spines, Rate: units.Gbps(*rate), Seed: *seed,
	}
	if *topoFile != "" {
		params = cli.TopoParams{Name: "file", File: *topoFile}
	}
	tp, err := cli.BuildTopology(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *emit != "" {
		doc := interchange.FromTopology(tp)
		doc.Generator = &interchange.Provenance{Tool: "topogen", Family: params.Name, Spec: specJSON(params)}
		if err := interchange.EmitFile(*emit, doc); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("emitted: %s\n", *emit)
	}
	st := tp.BasicStats()
	rng := rand.New(rand.NewPCG(*seed, *seed^0x70706f))
	gap := tp.SpectralGap(300, rng)
	bisect := tp.BisectionEstimate(6, rng)
	fmt.Printf("topology: %s\n", tp.Name)
	fmt.Printf("  switches: %d   links: %d   servers: %d\n", st.Switches, st.Links, st.Servers)
	min, max := tp.MinMaxDegree()
	fmt.Printf("  degree: %d..%d   regular: %v\n", min, max, min == max)
	fmt.Printf("  ToR diameter: %d   mean ToR hops: %.3f\n", st.ToRDiam, st.ToRMean)
	fmt.Printf("  spectral gap: %.4f   bisection (heuristic): %.0f Gbps\n", gap, bisect)
	if *tput {
		tors := tp.ToRs()
		per := float64(tp.Nodes[tors[0]].ServerPorts) * *rate
		m := trafficsim.Uniform(len(tors), per)
		ae, err := trafficsim.ECMPThroughput(tp, m)
		if err == nil {
			fmt.Printf("  uniform-traffic alpha (ECMP): %.3f\n", ae)
		}
		ak, err := trafficsim.KSPThroughput(tp, m, trafficsim.DefaultKSP())
		if err == nil {
			fmt.Printf("  uniform-traffic alpha (KSP-8): %.3f\n", ak)
		}
	}
}

// specJSON renders the generator parameters as canonical JSON for the
// emitted document's provenance block (informational only: a re-upload
// or reload never consults it).
func specJSON(p cli.TopoParams) string {
	b, err := json.Marshal(p)
	if err != nil {
		return ""
	}
	return string(b)
}
