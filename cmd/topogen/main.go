// Command topogen generates a topology and prints its graph-theoretic
// profile — the abstract side of the deployability tradeoff, on its own
// for quick comparisons.
//
// Usage:
//
//	topogen -topo jellyfish -n 128 -radix 16 -net 8
//	topogen -topo fattree -k 16
//	topogen -topo slimfly -q 13
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"physdep/internal/cli"
	"physdep/internal/trafficsim"
	"physdep/internal/units"
)

func main() {
	var (
		topoName = flag.String("topo", "fattree", "fattree|leafspine|jellyfish|xpander|flatbutterfly|fatclique|slimfly|vl2")
		k        = flag.Int("k", 8, "fat-tree K / fatclique Kf / butterfly dims")
		n        = flag.Int("n", 64, "jellyfish N / leaf count / butterfly C")
		radix    = flag.Int("radix", 16, "switch radix")
		net      = flag.Int("net", 8, "network ports per ToR")
		d        = flag.Int("d", 8, "xpander D / fatclique Ks / vl2 DA")
		lift     = flag.Int("lift", 6, "xpander lift / fatclique Kb / vl2 DI")
		q        = flag.Int("q", 5, "slim fly q")
		spines   = flag.Int("spines", 8, "leaf-spine spines")
		rate     = flag.Float64("rate", 100, "line rate Gbps")
		seed     = flag.Uint64("seed", 1, "random seed")
		tput     = flag.Bool("throughput", false, "also compute uniform-traffic throughput (slower)")
	)
	flag.Parse()
	tp, err := cli.BuildTopology(cli.TopoParams{
		Name: *topoName, K: *k, N: *n, Radix: *radix, Net: *net, D: *d,
		Lift: *lift, Q: *q, Spines: *spines, Rate: units.Gbps(*rate), Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	st := tp.BasicStats()
	rng := rand.New(rand.NewPCG(*seed, *seed^0x70706f))
	gap := tp.SpectralGap(300, rng)
	bisect := tp.BisectionEstimate(6, rng)
	fmt.Printf("topology: %s\n", tp.Name)
	fmt.Printf("  switches: %d   links: %d   servers: %d\n", st.Switches, st.Links, st.Servers)
	min, max := tp.MinMaxDegree()
	fmt.Printf("  degree: %d..%d   regular: %v\n", min, max, min == max)
	fmt.Printf("  ToR diameter: %d   mean ToR hops: %.3f\n", st.ToRDiam, st.ToRMean)
	fmt.Printf("  spectral gap: %.4f   bisection (heuristic): %.0f Gbps\n", gap, bisect)
	if *tput {
		tors := tp.ToRs()
		per := float64(tp.Nodes[tors[0]].ServerPorts) * *rate
		m := trafficsim.Uniform(len(tors), per)
		ae, err := trafficsim.ECMPThroughput(tp, m)
		if err == nil {
			fmt.Printf("  uniform-traffic alpha (ECMP): %.3f\n", ae)
		}
		ak, err := trafficsim.KSPThroughput(tp, m, trafficsim.DefaultKSP())
		if err == nil {
			fmt.Printf("  uniform-traffic alpha (KSP-8): %.3f\n", ak)
		}
	}
}
