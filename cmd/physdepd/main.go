// Command physdepd serves physdep's evaluation pipeline over HTTP+JSON:
// POST /v1/evaluate, /v1/stats, /v1/whatif against shared frozen
// topology snapshots, with per-request deadlines, an LRU result cache,
// and bounded admission; POST /v1/documents uploads an interchange
// document and returns a "sha256:<hex>" ref usable as a topo spec.
// See internal/serve and the README's "Serving" and "Interchange"
// sections.
//
// Usage:
//
//	physdepd [-addr host:port] [-max-inflight n] [-cache n] [-doc-entries n] [-cache-persist file] [-timeout d]
//
// The bound address is printed as "listening on <addr>" once the
// listener is up (use -addr 127.0.0.1:0 to let the kernel pick a free
// port — scripts/check.sh's smoke stage does). SIGINT/SIGTERM drains
// in-flight requests and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"physdep/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently admitted uncached evaluations (0 = 2x worker count)")
	cacheEntries := flag.Int("cache", 0, "result cache entries (0 = default 256)")
	docEntries := flag.Int("doc-entries", 0, "uploaded interchange documents held resident (0 = default 32)")
	cachePersist := flag.String("cache-persist", "", "persist the result cache to this file: loaded at startup, written temp+rename on graceful shutdown")
	timeout := flag.Duration("timeout", 0, "server-side cap on per-request deadlines (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "max time to drain in-flight requests on shutdown")
	flag.Parse()
	if err := run(*addr, *maxInflight, *cacheEntries, *docEntries, *cachePersist, *timeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "physdepd:", err)
		os.Exit(1)
	}
}

func run(addr string, maxInflight, cacheEntries, docEntries int, persist string, timeout, drain time.Duration) error {
	srv := serve.New(serve.Config{
		MaxInFlight:    maxInflight,
		CacheEntries:   cacheEntries,
		DocEntries:     docEntries,
		RequestTimeout: timeout,
	})
	if persist != "" {
		// Warm start is best-effort: a missing file is a cold start (0
		// entries), a broken one costs the warm start but never the boot.
		if n, err := srv.LoadCache(persist); err != nil {
			fmt.Fprintln(os.Stderr, "physdepd: cache warm-start skipped:", err)
		} else {
			fmt.Printf("cache warm-start: %d entries\n", n)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Printed after binding so -addr :0 callers can read the real port.
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if persist != "" {
		// Persist after the drain so the snapshot includes everything the
		// last in-flight requests cached; the restarted daemon answers the
		// working set as byte-identical hits.
		n, err := srv.SaveCache(persist)
		if err != nil {
			return fmt.Errorf("cache persist: %w", err)
		}
		fmt.Printf("cache persisted: %d entries\n", n)
	}
	fmt.Println("shutdown complete")
	return nil
}
