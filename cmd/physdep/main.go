// Command physdep evaluates the physical deployability of one topology:
// it generates the fabric, places it into a hall, plans every cable,
// prices the build, schedules a technician crew, and checks the digital
// twin — then prints the §5.4-style scorecard.
//
// Usage:
//
//	physdep -topo fattree -k 8
//	physdep -topo jellyfish -n 64 -radix 16 -net 8 -rows 6 -slots 16
//	physdep -topo xpander -d 8 -lift 6
//	physdep -topo leafspine -n 32 -spines 8
//	physdep -topo fatclique -d 4 -lift 4 -k 4
//	physdep -topo slimfly -q 5
//	physdep -topo-file fabric.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"physdep/internal/cli"
	"physdep/internal/core"
	"physdep/internal/floorplan"
	"physdep/internal/interchange"
	"physdep/internal/topology"
	"physdep/internal/units"
)

func main() {
	var (
		topoName = flag.String("topo", "fattree", strings.Join(cli.Families(), "|"))
		k        = flag.Int("k", 8, "fat-tree K / fatclique Kf / butterfly dims")
		n        = flag.Int("n", 64, "jellyfish N / leaf count / flatrandom N")
		radix    = flag.Int("radix", 16, "switch radix")
		net      = flag.Int("net", 8, "network ports per ToR (jellyfish/flatrandom R)")
		d        = flag.Int("d", 8, "xpander D / fatclique Ks / slimfly q")
		lift     = flag.Int("lift", 6, "xpander lift / fatclique Kb")
		q        = flag.Int("q", 5, "slim fly q (prime ≡ 1 mod 4)")
		spines   = flag.Int("spines", 8, "leaf-spine spine count")
		rate     = flag.Float64("rate", 100, "line rate Gbps")
		rows     = flag.Int("rows", 6, "hall rows")
		slots    = flag.Int("slots", 16, "rack slots per row")
		techs    = flag.Int("techs", 8, "deployment crew size")
		anneal   = flag.Int("anneal", 0, "placement annealing steps (0 = greedy only)")
		seed     = flag.Uint64("seed", 1, "random seed")
		timeout  = flag.Duration("timeout", 0, "cancel the evaluation after this long (0 = no deadline)")
		topoFile = flag.String("topo-file", "", "evaluate an interchange document instead of generating (overrides -topo)")
	)
	flag.Parse()

	// ^C/SIGTERM cancel the evaluation gracefully (one-line diagnostic,
	// nonzero exit) instead of killing the process mid-print; a second
	// signal kills it the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	hallRows, hallSlots := *rows, *slots
	var tp *topology.Topology
	var err error
	if *topoFile != "" {
		var doc *interchange.Document
		tp, doc, err = interchange.LoadFileCtx(ctx, *topoFile)
		// A document may pin its own hall geometry; explicit -rows/-slots
		// flags still win (the operator is asking a what-if about a
		// different hall), so only un-set flags take the document's values.
		if err == nil && doc.Hall != nil {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["rows"] {
				hallRows = doc.Hall.Rows
			}
			if !set["slots"] {
				hallSlots = doc.Hall.Slots
			}
		}
	} else {
		tp, err = cli.BuildTopology(cli.TopoParams{
			Name: *topoName, K: *k, N: *n, Radix: *radix, Net: *net, D: *d,
			Lift: *lift, Q: *q, Spines: *spines, Rate: units.Gbps(*rate), Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	in := core.DefaultInput(tp, floorplan.DefaultHall(hallRows, hallSlots))
	in.Techs = *techs
	in.PlacementSteps = *anneal
	in.Seed = *seed
	rep, err := core.EvaluateCtx(ctx, in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	printReport(rep)
}

func printReport(r *core.Report) {
	fmt.Printf("physical deployability report: %s\n\n", r.Name)
	fmt.Println("abstract network metrics (what papers report):")
	fmt.Printf("  switches %d, links %d, servers %d\n",
		r.Abstract.Switches, r.Abstract.Links, r.Abstract.Servers)
	fmt.Printf("  ToR diameter %d, mean hops %.2f, spectral gap %.3f, bisection %.0f Gbps\n\n",
		r.Abstract.ToRDiameter, r.Abstract.ToRMeanHops, r.Abstract.SpectralGap, r.Abstract.BisectionGb)
	fmt.Println("physical build (what this paper says to also report):")
	fmt.Printf("  cables: %d (%.0f m total, %.0f m max run, %.0f%% optical)\n",
		r.Cabling.Cables, float64(r.Cabling.TotalLength), float64(r.Cabling.MaxLength),
		100*r.Cabling.OpticalFrac)
	fmt.Printf("  bundleability: %.0f%% of cables in ≥4-cable prebuilt bundles\n", 100*r.Bundleability)
	fmt.Printf("  capex: $%.0f switches + $%.0f cabling = $%.0f\n",
		float64(r.SwitchCapex), float64(r.CableCapex), float64(r.TotalCapex))
	fmt.Printf("  tray peak utilization: %.0f%%\n\n", 100*r.TrayPeakUtil)
	fmt.Println("deployment execution:")
	fmt.Printf("  time to deploy: %.1f h wall-clock; labor $%.0f (%.0f%% walking)\n",
		float64(r.TimeToDeploy), float64(r.LaborCost), 100*r.WalkFraction)
	fmt.Printf("  first-pass yield: %.1f%% (%d reworks)\n", 100*r.FirstPassYield, r.Reworks)
	fmt.Printf("  stranded server capital during deploy: $%.0f\n\n", float64(r.StrandedCost))
	fmt.Println("digital-twin verdict:")
	fmt.Printf("  violations: %d; out-of-envelope: %v\n", r.TwinViolations, r.OutOfEnvelope)
	fmt.Printf("  diversity absorbed: %d line rates, %d radixes\n", r.DiversityRates, r.DiversityRadixs)
}
